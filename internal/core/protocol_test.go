package core

import (
	"testing"

	"scalabletcc/internal/mem"
	"scalabletcc/internal/tid"
	"scalabletcc/internal/workload"
)

// scriptProgram runs hand-written per-processor transaction scripts so
// directed protocol scenarios (the paper's Figure 2 and Figure 3
// walkthroughs) can be encoded as tests.
type scriptProgram struct {
	name string
	// txs[proc] is that processor's transaction list (one phase).
	txs    [][]workload.Tx
	homing map[mem.Addr]int // page address -> home node
}

func (s *scriptProgram) Name() string                { return s.name }
func (s *scriptProgram) Procs() int                  { return len(s.txs) }
func (s *scriptProgram) Phases() int                 { return 1 }
func (s *scriptProgram) TxCount(proc, phase int) int { return len(s.txs[proc]) }
func (s *scriptProgram) Tx(proc, phase, idx int) workload.Tx {
	return s.txs[proc][idx]
}
func (s *scriptProgram) PreMap(m *mem.Map) {
	for page, node := range s.homing {
		m.Home(page, node)
	}
}

// delayed returns a transaction that computes for d cycles first, to order
// scripted transactions in time.
func delayed(d uint32, ops ...workload.Op) workload.Tx {
	all := append([]workload.Op{{Kind: workload.Compute, Cycles: d}}, ops...)
	return workload.Tx{Ops: all}
}

func ld(a mem.Addr) workload.Op { return workload.Op{Kind: workload.Load, Addr: a} }
func st(a mem.Addr) workload.Op { return workload.Op{Kind: workload.Store, Addr: a} }

func runScript(t *testing.T, s *scriptProgram, mutate func(*Config)) (*System, *Results) {
	t.Helper()
	cfg := DefaultConfig(len(s.txs))
	cfg.MaxCycles = 10_000_000
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := NewSystem(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	sys.CollectCommitLog(true)
	sys.EnableAuditor()
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// Addresses homed at distinct nodes for scripted scenarios.
const (
	addrD0 mem.Addr = 0x10000 // homed at node 0
	addrD1 mem.Addr = 0x20000 // homed at node 1
	addrD2 mem.Addr = 0x30000 // homed at node 2
)

func homing3() map[mem.Addr]int {
	return map[mem.Addr]int{addrD0: 0, addrD1: 1, addrD2: 2}
}

// TestFigure2Scenario encodes the paper's Figure 2 walkthrough: P1 loads
// from two directories and commits a write; P2 has speculatively read the
// written line, violates, re-executes, and re-reads the committed value via
// the owner write-back path.
func TestFigure2Scenario(t *testing.T) {
	// P1 (proc 0): reads addrD0 and addrD1, writes addrD1, commits first.
	// P2 (proc 1): reads addrD1 early, computes for a long time, then writes
	// addrD2 — it must violate when P1 commits, re-execute, and observe
	// P1's value.
	s := &scriptProgram{
		name: "figure2",
		txs: [][]workload.Tx{
			{delayed(10, ld(addrD0), ld(addrD1), st(addrD1))},
			{delayed(1, ld(addrD1), workload.Op{Kind: workload.Compute, Cycles: 4000}, st(addrD2))},
		},
		homing: homing3(),
	}
	// A 3-node machine so all three homes are distinct.
	s.txs = append(s.txs, []workload.Tx{delayed(1)})
	sys, res := runScript(t, s, nil)

	if res.Violations == 0 {
		t.Fatal("P2 never violated despite reading P1's write-set")
	}
	if res.Commits != 3 {
		t.Fatalf("commits = %d, want 3", res.Commits)
	}
	// P2's committed read of addrD1 must observe P1's version.
	var p1TID, p2Read mem.Version
	for _, r := range res.CommitLog {
		if v, ok := r.Writes[addrD1]; ok {
			p1TID = v
		}
	}
	for _, r := range res.CommitLog {
		if r.Proc == 1 {
			p2Read = r.Reads[addrD1]
		}
	}
	if p1TID == 0 || p2Read != p1TID {
		t.Fatalf("P2 read version %d of addrD1, want P1's committed version %d", p2Read, p1TID)
	}
	// The committer became the owner; P2's re-read forwarded through it.
	if res.Forwards == 0 {
		t.Fatal("no owner forward occurred; write-back protocol not exercised")
	}
	_ = sys
}

// TestFigure3ParallelCommit encodes Figure 3's top scenario: two
// transactions with disjoint directory footprints commit fully in parallel.
func TestFigure3ParallelCommit(t *testing.T) {
	s := &scriptProgram{
		name: "figure3-parallel",
		txs: [][]workload.Tx{
			{delayed(10, ld(addrD0), st(addrD0))},
			{delayed(10, ld(addrD1), st(addrD1))},
		},
		homing: homing3(),
	}
	_, res := runScript(t, s, nil)
	if res.Violations != 0 {
		t.Fatalf("disjoint transactions violated: %d", res.Violations)
	}
	if res.Commits != 2 {
		t.Fatalf("commits = %d", res.Commits)
	}
}

// TestFigure3ConflictingCommit encodes Figure 3's bottom scenario: the
// transaction with the higher TID has read what the lower one commits, so
// it must abort (send Abort, clearing its marks) and re-execute.
func TestFigure3ConflictingCommit(t *testing.T) {
	s := &scriptProgram{
		name: "figure3-conflict",
		txs: [][]workload.Tx{
			// P0 writes addrD0 and commits quickly.
			{delayed(10, ld(addrD0), st(addrD0))},
			// P1 reads addrD0 early, then takes long enough that P0's TID is
			// lower, and writes addrD1.
			{delayed(1, ld(addrD0), workload.Op{Kind: workload.Compute, Cycles: 5000}, st(addrD1))},
		},
		homing: homing3(),
	}
	sys, res := runScript(t, s, nil)
	if res.Violations == 0 {
		t.Fatal("conflicting pair committed without violation")
	}
	if res.Commits != 2 {
		t.Fatalf("commits = %d", res.Commits)
	}
	d := sys.Directory(0)
	if d.Stats().AbortsProcessed == 0 && res.Violations > 0 {
		// The violated transaction may or may not have marked yet; at least
		// the violation must have been recorded.
		t.Log("violation occurred before marking (no abort message needed)")
	}
}

// TestWriteWriteSerialization: two transactions write the same line with no
// reads; neither violates (write-write is serialized by the directory, not
// a conflict), and the final memory state is the higher TID's data.
func TestWriteWriteSerialization(t *testing.T) {
	s := &scriptProgram{
		name: "write-write",
		txs: [][]workload.Tx{
			{delayed(10, st(addrD0))},
			{delayed(12, st(addrD0))},
		},
		homing: homing3(),
	}
	_, res := runScript(t, s, nil)
	if res.Violations != 0 {
		t.Fatalf("write-write conflict caused %d violations; the protocol serializes them", res.Violations)
	}
	if res.Commits != 2 {
		t.Fatalf("commits = %d", res.Commits)
	}
}

// TestWordDisjointNoFalseSharing: with word-level tracking, a reader of
// word 0 must not violate when word 1 of the same line is committed.
func TestWordDisjointNoFalseSharing(t *testing.T) {
	s := &scriptProgram{
		name: "word-disjoint",
		txs: [][]workload.Tx{
			{delayed(10, st(addrD0+4))}, // writes word 1
			{delayed(1, ld(addrD0), workload.Op{Kind: workload.Compute, Cycles: 5000})}, // reads word 0
		},
		homing: homing3(),
	}
	_, res := runScript(t, s, nil)
	if res.Violations != 0 {
		t.Fatalf("false-sharing violation under word-level tracking: %d", res.Violations)
	}
}

// TestLineGranularityFalseSharing: the same scenario under line-level
// tracking must violate.
func TestLineGranularityFalseSharing(t *testing.T) {
	s := &scriptProgram{
		name: "line-false-sharing",
		txs: [][]workload.Tx{
			{delayed(10, st(addrD0+4))},
			{delayed(1, ld(addrD0), workload.Op{Kind: workload.Compute, Cycles: 5000})},
		},
		homing: homing3(),
	}
	_, res := runScript(t, s, func(c *Config) { c.LineGranularity = true })
	if res.Violations == 0 {
		t.Fatal("line-level tracking did not produce the false-sharing violation")
	}
}

// TestDirtyBitWriteBack: committing a line then speculatively rewriting it
// must write the committed data back to memory first (the §3.1 dirty-bit
// rule), so an abort of the second transaction cannot lose the first's data.
func TestDirtyBitWriteBack(t *testing.T) {
	s := &scriptProgram{
		name: "dirty-rule",
		txs: [][]workload.Tx{
			{
				delayed(10, st(addrD0)),
				delayed(10, st(addrD0)), // same line again: triggers the rule
			},
		},
		homing: map[mem.Addr]int{addrD0: 0},
	}
	sys, res := runScript(t, s, nil)
	if res.Commits != 2 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if sys.Directory(0).Stats().WriteBacks == 0 {
		t.Fatal("dirty-bit rule produced no write-back")
	}
	// Memory must hold the second transaction's version.
	g := sys.cfg.Geometry
	line := sys.Directory(0).memory.ReadLine(g.Line(addrD0))
	w := g.WordIndex(addrD0)
	// The line is still owned by the committer; memory has at least the
	// first version from the dirty-rule write-back.
	if line[w] == 0 {
		t.Fatal("memory never received the first commit's data")
	}
}

// TestSkipVectorAdvance: a directory must advance its NSTID past skipped
// TIDs even when skips arrive out of order (Figure 5).
func TestSkipVectorAdvance(t *testing.T) {
	s := &scriptProgram{
		name: "skips",
		txs: [][]workload.Tx{
			{delayed(10, st(addrD0)), delayed(10, st(addrD0))},
			{delayed(5, st(addrD1)), delayed(5, st(addrD1))},
			{delayed(7, st(addrD2)), delayed(7, st(addrD2))},
		},
		homing: homing3(),
	}
	sys, res := runScript(t, s, nil)
	if res.Commits != 6 {
		t.Fatalf("commits = %d", res.Commits)
	}
	// Every directory must have accounted every TID: NSTID == 7 everywhere.
	for i := 0; i < 3; i++ {
		if nstid := sys.Directory(i).NSTID(); nstid != tid.TID(7) {
			t.Fatalf("dir %d NSTID = %d, want 7", i, nstid)
		}
		if sys.Directory(i).Stats().SkipsProcessed == 0 {
			t.Fatalf("dir %d processed no skips", i)
		}
	}
}

// TestLoadStallsOnMarkedLine: a load to a line marked by an in-flight commit
// must stall at the directory until the commit completes, and then observe
// the committed value.
func TestLoadStallsOnMarkedLine(t *testing.T) {
	s := &scriptProgram{
		name: "marked-stall",
		txs: [][]workload.Tx{
			{delayed(10, st(addrD0))},
			// P1 loads the same line around P0's commit time.
			{delayed(160, ld(addrD0), workload.Op{Kind: workload.Compute, Cycles: 10})},
		},
		homing: homing3(),
	}
	sys, res := runScript(t, s, nil)
	if res.Commits != 2 {
		t.Fatalf("commits = %d", res.Commits)
	}
	_ = sys
	// Whether the load hit the marked window is timing-dependent; the
	// invariant that matters is serializability, checked by runScript's
	// oracle in the stress tests. Here we just require both commits.
}
