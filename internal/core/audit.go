package core

import (
	"fmt"
	"sort"

	"scalabletcc/internal/mem"
)

// FinalMemoryView assembles the machine's end-of-run view of every word the
// program ever committed: main memory overlaid with the owned words still
// held in processor caches (the write-back protocol leaves the latest data
// at the last committer until eviction or forwarding).
func (s *System) FinalMemoryView() map[mem.Addr]mem.Version {
	g := s.cfg.Geometry
	out := make(map[mem.Addr]mem.Version)
	for _, d := range s.dirs {
		for _, base := range d.entBases {
			line := d.memory.ReadLine(base)
			for w, v := range line {
				if v != 0 {
					out[g.WordAddr(base, w)] = v
				}
			}
		}
	}
	// Owned words overlay memory monotonically — exactly what the flush
	// paths do. (With line-granularity tracking a partially-valid owner can
	// nominally "own" words whose latest data already reached memory via an
	// earlier transfer; its stale copies never win.)
	for _, d := range s.dirs {
		for id, base := range d.entBases {
			e := d.entryAt(int32(id))
			if e.owner < 0 {
				continue
			}
			line := s.procs[e.owner].cache.Peek(base)
			if line == nil || !line.Dirty {
				continue
			}
			for w := 0; w < g.WordsPerLine(); w++ {
				if a := g.WordAddr(base, w); e.ownedWords.Has(w) && line.Data[w] > out[a] {
					out[a] = line.Data[w]
				}
			}
		}
	}
	return out
}

// AuditFinalMemory compares the machine's final state against the TID-serial
// ideal derived from the commit log. It returns a descriptive error for the
// first mismatch: a word whose committed data was lost or duplicated by the
// data-movement protocol (write-backs, flushes, ownership transfers). The
// run must have collected the commit log.
func (s *System) AuditFinalMemory() error {
	if !s.collectLog {
		return fmt.Errorf("core: AuditFinalMemory requires CollectCommitLog(true)")
	}
	ideal := make(map[mem.Addr]mem.Version)
	records := append([]CommitRecord(nil), s.commitLog...)
	sort.Slice(records, func(i, j int) bool { return records[i].TID < records[j].TID })
	for _, r := range records {
		for a, v := range r.Writes {
			ideal[a] = v
		}
	}
	got := s.FinalMemoryView()
	var addrs []mem.Addr
	for a := range ideal {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if got[a] != ideal[a] {
			return fmt.Errorf("core: final memory mismatch at %#x: machine has version %d, TID-serial order requires %d",
				a, got[a], ideal[a])
		}
	}
	return nil
}
