package core

import (
	"fmt"
	"sort"

	"scalabletcc/internal/bits"
	"scalabletcc/internal/mem"
	"scalabletcc/internal/mesh"
	"scalabletcc/internal/obs"
	"scalabletcc/internal/sim"
	"scalabletcc/internal/stats"
	"scalabletcc/internal/tid"
	"scalabletcc/internal/workload"
)

// Sharded execution of a System (Config.Shards >= 1).
//
// Every node gets its own timing wheel; the machine advances in lockstep
// windows of HopLatency cycles under sim.ShardExec. Inside a window a
// node's handlers run exactly as in sequential mode — all processor and
// directory events are node-local self-posts — but anything that would
// touch another node or global state is captured on the node's port:
//
//   - cross-node protocol messages are captured by value (with a data
//     snapshot) into the port's outbox, in execution order;
//   - observer events buffer on the port, stamped with the node's clock;
//   - barrier arrivals, TID retirements, and processor completions become
//     per-port counters/lists (their ordering is commutative);
//   - commit/violation statistics aggregate into per-port counters and
//     histograms, merged once after the run.
//
// At each window boundary the merge phase — serial, and therefore race-free
// — replays the window's captured sends through the mesh link model in
// canonical (time, node, capture order) order, delivers them into the
// destination nodes' kernels, applies barrier and vendor bookkeeping, and
// flushes observer events in the same canonical order. Because the window
// structure, the capture order within a node, and the canonical merge order
// are all functions of simulated behaviour alone, the outcome is
// bit-identical for every worker count.
//
// The lookahead argument: a cross-node message sent at time t occupies at
// least one cycle per link and travels at least one hop, so it arrives at
// t + HopLatency + occupancy >= t + L + 1 — strictly after the window
// [T, T+L-1] containing t. Merge-phase inserts are therefore always in
// every destination kernel's future. Node-local sends (LocalLatency, which
// may be < L) never cross the port: they are self-posts into the node's own
// kernel, which is exactly the case a single wheel handles natively.

// Port opcodes (nodePort is a sim.Handler on the node's kernel).
const (
	// portMsg delivers a protocol message on the owning node; a1 is the
	// encoded pool index.
	portMsg uint32 = iota
)

// sendEffect is one captured cross-node message: the record by value, with
// msg.data owning a sender-pool snapshot of the payload until the merge
// phase copies it into a destination-pool buffer.
type sendEffect struct {
	t   sim.Time
	msg protoMsg
}

// nodePort is one node's membrane between its private kernel and the rest
// of the machine. During the parallel phase only the owning node touches
// it; during the merge phase only the (serial) merger does.
type nodePort struct {
	sys  *System
	node int
	k    *sim.Kernel

	// Node-owned pools (the sharded counterparts of System.msgs/bufFree).
	msgs    []protoMsg
	msgFree []int32
	bufFree [][]mem.Version

	// Captured cross-node sends, in execution order (nondecreasing time).
	out    []sendEffect
	outCur int

	// Buffered observer events, stamped with this node's clock.
	events   []obs.Event
	eventCur int

	// Window-commutative captures.
	barriers int       // barrier arrivals this window
	retires  []tid.TID // TIDs retired this window
	done     int       // processors finished, run total

	// Per-node statistics, merged into the System aggregate after the run.
	msgCounts      [NumMsgKinds]uint64
	commits        uint64
	violations     uint64
	instr          uint64
	txInstrH       stats.Histogram
	rdSetH         stats.Histogram
	wrSetH         stats.Histogram
	dirsTouchedH   stats.Histogram
	touched        bits.NodeSet
	commitLog      []CommitRecord
	localBytes     [mesh.NumClasses]uint64
	localMsgs      [mesh.NumClasses]uint64
	localNodeBytes uint64
}

// allocMsg allocates a message slot from this node's pool and returns its
// encoded index.
func (np *nodePort) allocMsg() (int32, *protoMsg) {
	var slot int32
	if n := len(np.msgFree); n > 0 {
		slot = np.msgFree[n-1]
		np.msgFree = np.msgFree[:n-1]
	} else {
		np.msgs = append(np.msgs, protoMsg{})
		slot = int32(len(np.msgs) - 1)
		if slot > slotMask {
			panic("core: per-node message pool exceeds index encoding")
		}
	}
	m := &np.msgs[slot]
	*m = protoMsg{}
	return int32(np.node)<<portShift | slot, m
}

// freeMsg returns slot (and its data buffer) to this node's pool.
func (np *nodePort) freeMsg(slot int32) {
	m := &np.msgs[slot]
	if m.data != nil {
		np.bufFree = append(np.bufFree, m.data)
		m.data = nil
	}
	np.msgFree = append(np.msgFree, slot)
}

func (np *nodePort) acquireBuf() []mem.Version {
	if n := len(np.bufFree); n > 0 {
		b := np.bufFree[n-1]
		np.bufFree = np.bufFree[:n-1]
		return b
	}
	return make([]mem.Version, np.sys.cfg.Geometry.WordsPerLine())
}

func (np *nodePort) releaseBuf(b []mem.Version) {
	np.bufFree = append(np.bufFree, b)
}

// sendMsg implements System.sendMsg for a message owned by this node.
func (np *nodePort) sendMsg(i int32) {
	slot := i & slotMask
	m := &np.msgs[slot]
	np.msgCounts[m.kind]++
	if m.src == m.dst {
		// Node-local delivery: a self-post, with the local traffic the mesh
		// would have accounted folded into the run totals later. The slot
		// stays live until dispatch frees it — it already belongs here.
		size := np.sys.cfg.size(m.kind)
		c := class(m.kind)
		np.localBytes[c] += uint64(size)
		np.localMsgs[c]++
		np.localNodeBytes += uint64(size)
		np.k.Post(np.k.Now()+np.sys.cfg.Mesh.LocalLatency, np, portMsg, uint64(i), 0)
		return
	}
	// Cross-node: capture by value. The data snapshot (already a
	// sender-pool buffer) moves into the effect; the slot frees now.
	np.out = append(np.out, sendEffect{t: np.k.Now(), msg: *m})
	m.data = nil
	np.msgFree = append(np.msgFree, slot)
}

// HandleEvent dispatches this node's arrived protocol messages.
func (np *nodePort) HandleEvent(code uint32, a1, a2 uint64) {
	if code != portMsg {
		panic("core: unknown port event")
	}
	np.sys.dispatchMsg(int32(a1))
}

// noteCommit is the per-node twin of System.noteCommit.
func (np *nodePort) noteCommit(p *Processor, instr uint64) {
	s := np.sys
	np.commits++
	np.instr += instr
	np.txInstrH.Add(instr)
	np.rdSetH.Add(uint64(p.readSet.Len() * s.cfg.Geometry.WordSize))
	var wrWords int
	np.touched.Reset()
	for _, d := range p.writeDirs {
		np.touched.Set(d)
		for _, wl := range p.writeLines[d] {
			wrWords += wl.words.Count()
		}
	}
	p.sharingVec.ForEach(func(d int) { np.touched.Set(d) })
	np.wrSetH.Add(uint64(wrWords * s.cfg.Geometry.WordSize))
	np.dirsTouchedH.Add(uint64(np.touched.Count()))
}

// ---------------------------------------------------------------------------
// Sharded run loop.

// premapProgram freezes the first-touch page map by walking the whole
// program in canonical (phase, proc, tx, op) order before execution starts.
// Sequential mode homes pages at their true first access; under parallel
// execution that order would race and depend on scheduling, so the sharded
// engine fixes homing up front — every runtime Home lookup is then a
// read-only hit, safe from any goroutine.
func (s *System) premapProgram() {
	for ph := 0; ph < s.prog.Phases(); ph++ {
		for pr := 0; pr < s.cfg.Procs; pr++ {
			for i := 0; i < s.prog.TxCount(pr, ph); i++ {
				tx := s.prog.Tx(pr, ph, i)
				for _, op := range tx.Ops {
					if op.Kind == workload.Compute {
						continue
					}
					s.addrMap.Home(op.Addr, pr)
				}
			}
		}
	}
}

// runSharded executes the program on the epoch-parallel engine.
func (s *System) runSharded() (*Results, error) {
	if s.tape != nil {
		return nil, fmt.Errorf("core: TAPE conflict profiling requires Shards = 0 (sequential kernel)")
	}
	if s.aud != nil {
		return nil, fmt.Errorf("core: the invariant auditor requires Shards = 0 (sequential kernel)")
	}
	if s.sampleEvery > 0 {
		return nil, fmt.Errorf("core: the occupancy sampler requires Shards = 0 (sequential kernel)")
	}
	s.running = s.cfg.Procs
	if !s.restored {
		for _, p := range s.procs {
			s.ports[p.id].k.Post(0, p, prStart, 0, 0)
		}
	}
	ks := make([]*sim.Kernel, len(s.ports))
	for i, np := range s.ports {
		ks[i] = np.k
	}
	ex := &sim.ShardExec{
		Ks:      ks,
		Workers: s.cfg.Shards,
		Window:  s.cfg.Mesh.HopLatency,
		Merge:   s.mergeWindow,
	}
	if s.cfg.MaxCycles > 0 || s.ckFn != nil {
		// Check runs serially at the start of each epoch, after the previous
		// window's merge — the sharded engine's quiescent cut.
		ex.Check = func(now sim.Time) error {
			if s.cfg.MaxCycles > 0 && now > s.cfg.MaxCycles {
				return fmt.Errorf("core: watchdog expired at cycle %d (%d procs still running)",
					now, s.running)
			}
			return s.maybeCheckpoint(now)
		}
	}
	if err := ex.Run(); err != nil {
		return nil, err
	}
	for _, np := range s.ports {
		s.running -= np.done
	}
	if s.running != 0 {
		return nil, fmt.Errorf("core: deadlock — event queues drained with %d processors unfinished\n%s",
			s.running, s.deadlockReport())
	}
	if n := s.vendor.Outstanding(); n != 0 {
		return nil, fmt.Errorf("core: %d TIDs issued but never retired", n)
	}
	s.mergePortStats()
	r := s.results()
	// Node-local sends bypassed the mesh; fold their accounting in now.
	for _, np := range s.ports {
		for c := 0; c < mesh.NumClasses; c++ {
			r.Traffic.BytesByClass[c] += np.localBytes[c]
			r.Traffic.MsgsByClass[c] += np.localMsgs[c]
		}
		r.Traffic.PerNodeBytes[np.node] += np.localNodeBytes
	}
	return r, nil
}

// mergeWindow is the serial phase between epochs: cross-node sends replay
// through the mesh in canonical (time, node, capture order) order, barrier
// and vendor bookkeeping applies, and buffered observer events flush in the
// same canonical order.
func (s *System) mergeWindow(start, end sim.Time, active []int) {
	// One sweep over the ports that ran this window (only they can have
	// captured anything — idle kernels dispatch no handlers) gathers
	// everything the window produced: the ports holding cross-node sends or
	// observer events, the barrier-arrival count, and the retired TIDs. The
	// per-cycle replay loops below then walk only the gathered ports, so an
	// epoch's merge cost scales with what actually happened, not with
	// cycles x nodes. Retirement is safe to interleave with the sweep —
	// Vendor.Retire is pure bookkeeping and never schedules events — but
	// barrier release must wait until after send delivery so kernel
	// sequence numbers are assigned in the same order the phased form
	// assigned them.
	sends := s.mergeSend[:0]
	events := s.mergeEvent[:0]
	for _, i := range active {
		np := s.ports[i]
		if len(np.out) > 0 {
			sends = append(sends, np)
		}
		if len(np.events) > 0 {
			events = append(events, np)
		}
		s.barrier.arrived += np.barriers
		np.barriers = 0
		for _, t := range np.retires {
			s.vendor.Retire(t)
		}
		np.retires = np.retires[:0]
	}
	s.mergeSend = sends[:0]
	s.mergeEvent = events[:0]

	// Cross-node sends. Replaying in nondecreasing time order makes the
	// serial link walk reserve mesh links exactly as an inline walk would
	// have; node order breaks same-cycle ties canonically (the gather sweep
	// visits ports in node order, so the filtered walk preserves it).
	if len(sends) > 0 {
		for t := start; t <= end; t++ {
			for _, np := range sends {
				for np.outCur < len(np.out) && np.out[np.outCur].t == t {
					s.deliverSend(&np.out[np.outCur])
					np.outCur++
				}
			}
		}
		for _, np := range sends {
			if np.outCur != len(np.out) {
				panic("core: sharded merge left captured sends undelivered")
			}
			np.out = np.out[:0]
			np.outCur = 0
		}
	}

	// Barrier release (the arrivals are commutative: only the count matters).
	if s.barrier.arrived >= s.cfg.Procs {
		s.barrier.arrived = 0
		for _, p := range s.procs {
			// Sequential mode releases one cycle after the last arrival;
			// here the window boundary is the deterministic stand-in.
			s.ports[p.id].k.Post(end+1, p, prBarrierRelease, 0, 0)
		}
	}

	// Observer events, in global (cycle, node, emission order) order.
	if len(events) > 0 && s.obsv != nil {
		for t := start; t <= end; t++ {
			tc := uint64(t)
			for _, np := range events {
				for np.eventCur < len(np.events) && np.events[np.eventCur].Cycle == tc {
					s.obsv.Event(np.events[np.eventCur])
					np.eventCur++
				}
			}
		}
		for _, np := range events {
			if np.eventCur != len(np.events) {
				panic("core: sharded merge left observer events unflushed")
			}
			np.events = np.events[:0]
			np.eventCur = 0
		}
	}
}

// deliverSend routes one captured cross-node message through the mesh link
// model and posts its arrival into the destination node's kernel. The
// payload snapshot moves from a sender-pool buffer to a destination-pool
// buffer so every pool stays single-owner. (Moving the buffer itself —
// adopting it into the destination's pool — measures worse: hotspot traffic
// is asymmetric, so donor pools drain and re-allocate faster than the
// one-line copy costs.)
func (s *System) deliverSend(e *sendEffect) {
	src, dst := int(e.msg.src), int(e.msg.dst)
	arrival := s.net.RouteAt(e.t, src, dst, s.cfg.size(e.msg.kind), class(e.msg.kind))
	dp := s.ports[dst]
	i, m := dp.allocMsg()
	*m = e.msg
	if e.msg.data != nil {
		b := dp.acquireBuf()
		copy(b, e.msg.data)
		m.data = b
		s.ports[src].releaseBuf(e.msg.data)
		e.msg.data = nil
	}
	dp.k.Post(arrival, dp, portMsg, uint64(i), 0)
}

// mergePortStats folds the per-node statistics into the System aggregates
// results() reads, in node order; the commit log sorts by TID — the
// protocol's own canonical serialization order.
func (s *System) mergePortStats() {
	var endTime sim.Time
	for _, np := range s.ports {
		if now := np.k.Now(); now > endTime {
			endTime = now
		}
		s.totalCommits += np.commits
		s.totalViolations += np.violations
		s.committedInstr += np.instr
		for k := range np.msgCounts {
			s.msgCounts[k] += np.msgCounts[k]
		}
		for _, v := range np.txInstrH.Values() {
			s.txInstrH.Add(v)
		}
		for _, v := range np.rdSetH.Values() {
			s.rdSetH.Add(v)
		}
		for _, v := range np.wrSetH.Values() {
			s.wrSetH.Add(v)
		}
		for _, v := range np.dirsTouchedH.Values() {
			s.dirsTouchedH.Add(v)
		}
		s.commitLog = append(s.commitLog, np.commitLog...)
	}
	sort.Slice(s.commitLog, func(i, j int) bool { return s.commitLog[i].TID < s.commitLog[j].TID })
	s.endTime = endTime
}
