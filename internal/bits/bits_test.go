package bits

import (
	"testing"
	"testing/quick"
)

func TestWordMaskBasics(t *testing.T) {
	var m WordMask
	if m.Any() {
		t.Fatal("zero mask reports Any")
	}
	m = m.Set(0).Set(5).Set(63)
	for _, w := range []int{0, 5, 63} {
		if !m.Has(w) {
			t.Fatalf("bit %d not set", w)
		}
	}
	if m.Has(1) || m.Has(62) {
		t.Fatal("unexpected bit set")
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if !m.Overlaps(WordMask(1) << 5) {
		t.Fatal("Overlaps missed bit 5")
	}
	if m.Overlaps(WordMask(1) << 6) {
		t.Fatal("Overlaps false positive")
	}
}

func TestAll(t *testing.T) {
	cases := []struct {
		n    int
		want WordMask
	}{
		{0, 0}, {1, 1}, {8, 0xff}, {64, ^WordMask(0)}, {100, ^WordMask(0)},
	}
	for _, c := range cases {
		if got := All(c.n); got != c.want {
			t.Fatalf("All(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestNodeSetBasics(t *testing.T) {
	var s NodeSet
	if !s.Empty() {
		t.Fatal("zero NodeSet not empty")
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(200)
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	want := []int{0, 63, 64, 200}
	got := s.Members()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	s.Clear(63)
	if s.Has(63) {
		t.Fatal("Clear failed")
	}
	if s.String() != "{0 64 200}" {
		t.Fatalf("String = %q", s.String())
	}
	c := s.Clone()
	c.Set(1)
	if s.Has(1) {
		t.Fatal("Clone aliases parent")
	}
	s.Reset()
	if !s.Empty() {
		t.Fatal("Reset left members")
	}
}

func TestNodeSetClearBeyondStorage(t *testing.T) {
	var s NodeSet
	s.Clear(500) // must not panic or grow
	if !s.Empty() {
		t.Fatal("Clear on empty set created members")
	}
}

// Property: a NodeSet behaves like a map[int]bool.
func TestNodeSetModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var s NodeSet
		model := map[int]bool{}
		for _, op := range ops {
			n := int(op % 300)
			if op%2 == 0 {
				s.Set(n)
				model[n] = true
			} else {
				s.Clear(n)
				delete(model, n)
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for n := range model {
			if !s.Has(n) {
				return false
			}
		}
		ok := true
		s.ForEach(func(n int) {
			if !model[n] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitVecShift(t *testing.T) {
	var v BitVec
	v.Set(0)
	v.Set(1)
	v.Set(2)
	v.Set(5)
	if v.LeadingOnes() != 3 {
		t.Fatalf("LeadingOnes = %d, want 3", v.LeadingOnes())
	}
	v.ShiftOutLow(3)
	if v.Has(0) || v.Has(1) {
		t.Fatal("shift left low bits set")
	}
	if !v.Has(2) { // old bit 5 moved to 2
		t.Fatal("bit 5 did not move to 2")
	}
	if v.PopCount() != 1 {
		t.Fatalf("PopCount = %d, want 1", v.PopCount())
	}
}

func TestBitVecShiftAcrossWords(t *testing.T) {
	var v BitVec
	v.Set(70)
	v.Set(130)
	v.ShiftOutLow(64)
	if !v.Has(6) || !v.Has(66) {
		t.Fatal("64-bit shift misplaced bits")
	}
	v.ShiftOutLow(7)
	if v.Has(6) {
		t.Fatal("bit survived shift")
	}
	if !v.Has(59) {
		t.Fatal("bit 66 did not move to 59")
	}
}

func TestBitVecShiftAll(t *testing.T) {
	var v BitVec
	v.Set(3)
	v.ShiftOutLow(1000)
	if v.PopCount() != 0 {
		t.Fatal("shift beyond length left bits")
	}
	v.ShiftOutLow(5) // empty shift must not panic
}

// Property: ShiftOutLow(n) relocates every bit i >= n to i-n and drops the
// rest — the Skip-Vector correctness condition of Figure 5.
func TestBitVecShiftProperty(t *testing.T) {
	f := func(bitsIn []uint16, shift uint16) bool {
		n := int(shift % 200)
		var v BitVec
		model := map[int]bool{}
		for _, b := range bitsIn {
			i := int(b % 500)
			v.Set(i)
			model[i] = true
		}
		v.ShiftOutLow(n)
		for i := 0; i < 500; i++ {
			want := model[i+n]
			if v.Has(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitVecLeadingOnesLong(t *testing.T) {
	var v BitVec
	for i := 0; i < 130; i++ {
		v.Set(i)
	}
	if v.LeadingOnes() != 130 {
		t.Fatalf("LeadingOnes = %d, want 130", v.LeadingOnes())
	}
	v.Reset()
	if v.PopCount() != 0 || v.LeadingOnes() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestNodeSetMax(t *testing.T) {
	var s NodeSet
	if s.Max() != -1 {
		t.Fatalf("empty set Max = %d, want -1", s.Max())
	}
	s.Set(3)
	s.Set(70)
	if s.Max() != 70 {
		t.Fatalf("Max = %d, want 70", s.Max())
	}
	s.Clear(70)
	if s.Max() != 3 {
		t.Fatalf("Max = %d, want 3", s.Max())
	}
}

func TestBitVecMaxSet(t *testing.T) {
	var v BitVec
	if v.MaxSet() != -1 {
		t.Fatalf("empty vec MaxSet = %d, want -1", v.MaxSet())
	}
	v.Set(0)
	v.Set(129)
	if v.MaxSet() != 129 {
		t.Fatalf("MaxSet = %d, want 129", v.MaxSet())
	}
	v.ShiftOutLow(1)
	if v.MaxSet() != 128 {
		t.Fatalf("after shift MaxSet = %d, want 128", v.MaxSet())
	}
	v.Reset()
	if v.MaxSet() != -1 {
		t.Fatalf("after Reset MaxSet = %d, want -1", v.MaxSet())
	}
}
