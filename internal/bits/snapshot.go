package bits

// Words returns a copy of the vector's backing words for serialization.
// Trailing zero words are trimmed so equal vectors snapshot identically.
func (v *BitVec) Words() []uint64 {
	n := len(v.w)
	for n > 0 && v.w[n-1] == 0 {
		n--
	}
	return append([]uint64(nil), v.w[:n]...)
}

// LoadWords replaces the vector's contents with the given words.
func (v *BitVec) LoadWords(w []uint64) {
	v.w = append(v.w[:0], w...)
}

// Words returns a copy of the set's backing words for serialization, with
// trailing zero words trimmed.
func (s *NodeSet) Words() []uint64 {
	n := len(s.w)
	for n > 0 && s.w[n-1] == 0 {
		n--
	}
	return append([]uint64(nil), s.w[:n]...)
}

// LoadWords replaces the set's contents with the given words.
func (s *NodeSet) LoadWords(w []uint64) {
	s.w = append(s.w[:0], w...)
}
