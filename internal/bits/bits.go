// Package bits provides the small bit-level containers the protocol state is
// built from: fixed word masks (per-line SR/SM/valid tracking), node sets
// (directory sharers lists, processor Sharing/Writing vectors), and a
// growable, shiftable bit vector (the directory Skip Vector).
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordMask tracks up to 64 per-word flags within a cache line.
type WordMask uint64

// Set returns m with word i set.
func (m WordMask) Set(i int) WordMask { return m | 1<<uint(i) }

// Has reports whether word i is set.
func (m WordMask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Any reports whether any word is set.
func (m WordMask) Any() bool { return m != 0 }

// Overlaps reports whether the two masks share a set word.
func (m WordMask) Overlaps(o WordMask) bool { return m&o != 0 }

// Count returns the number of set words.
func (m WordMask) Count() int { return bits.OnesCount64(uint64(m)) }

// All returns a mask with the n low words set.
func All(n int) WordMask {
	if n >= 64 {
		return ^WordMask(0)
	}
	return WordMask(1)<<uint(n) - 1
}

// NodeSet is a set of node IDs, used for sharer lists and the per-processor
// Sharing and Writing vectors. It grows on demand and the zero value is an
// empty set.
type NodeSet struct {
	w []uint64
}

// Set adds node i.
func (s *NodeSet) Set(i int) {
	idx := i >> 6
	for len(s.w) <= idx {
		s.w = append(s.w, 0)
	}
	s.w[idx] |= 1 << uint(i&63)
}

// Clear removes node i.
func (s *NodeSet) Clear(i int) {
	idx := i >> 6
	if idx < len(s.w) {
		s.w[idx] &^= 1 << uint(i&63)
	}
}

// Has reports whether node i is a member.
func (s *NodeSet) Has(i int) bool {
	idx := i >> 6
	return idx < len(s.w) && s.w[idx]&(1<<uint(i&63)) != 0
}

// Reset empties the set, retaining storage.
func (s *NodeSet) Reset() {
	for i := range s.w {
		s.w[i] = 0
	}
}

// Count returns the number of members.
func (s *NodeSet) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *NodeSet) Empty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Max returns the largest member, or -1 for an empty set.
func (s *NodeSet) Max() int {
	for wi := len(s.w) - 1; wi >= 0; wi-- {
		if s.w[wi] != 0 {
			return wi<<6 + 63 - bits.LeadingZeros64(s.w[wi])
		}
	}
	return -1
}

// ForEach calls fn for every member in ascending order.
func (s *NodeSet) ForEach(fn func(i int)) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Members returns the members in ascending order.
func (s *NodeSet) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Clone returns an independent copy.
func (s *NodeSet) Clone() NodeSet {
	c := NodeSet{w: make([]uint64, len(s.w))}
	copy(c.w, s.w)
	return c
}

// String renders the set like {0 3 17}.
func (s *NodeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// BitVec is a growable bit vector supporting left shifts, used for the
// directory Skip Vector: bit i corresponds to TID (NSTID + i).
type BitVec struct {
	w []uint64
}

// Set sets bit i, growing as needed.
func (v *BitVec) Set(i int) {
	idx := i >> 6
	for len(v.w) <= idx {
		v.w = append(v.w, 0)
	}
	v.w[idx] |= 1 << uint(i&63)
}

// Has reports whether bit i is set.
func (v *BitVec) Has(i int) bool {
	idx := i >> 6
	return idx < len(v.w) && v.w[idx]&(1<<uint(i&63)) != 0
}

// ShiftOutLow discards the n low bits, moving bit n to position 0.
func (v *BitVec) ShiftOutLow(n int) {
	if n <= 0 {
		return
	}
	whole := n >> 6
	if whole >= len(v.w) {
		v.w = v.w[:0]
		return
	}
	v.w = append(v.w[:0], v.w[whole:]...)
	rem := uint(n & 63)
	if rem == 0 {
		return
	}
	for i := 0; i < len(v.w); i++ {
		v.w[i] >>= rem
		if i+1 < len(v.w) {
			v.w[i] |= v.w[i+1] << (64 - rem)
		}
	}
}

// LeadingOnes returns the count of consecutive set bits starting at bit 0.
func (v *BitVec) LeadingOnes() int {
	n := 0
	for _, w := range v.w {
		t := bits.TrailingZeros64(^w)
		n += t
		if t != 64 {
			break
		}
	}
	return n
}

// MaxSet returns the index of the highest set bit, or -1 if none is set.
func (v *BitVec) MaxSet() int {
	for wi := len(v.w) - 1; wi >= 0; wi-- {
		if v.w[wi] != 0 {
			return wi<<6 + 63 - bits.LeadingZeros64(v.w[wi])
		}
	}
	return -1
}

// PopCount returns the number of set bits.
func (v *BitVec) PopCount() int {
	n := 0
	for _, w := range v.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset clears all bits, retaining storage.
func (v *BitVec) Reset() {
	for i := range v.w {
		v.w[i] = 0
	}
}
