module scalabletcc

go 1.23
