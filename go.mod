module scalabletcc

go 1.22
