// Command tccd serves the simulator as a service: a bounded job queue
// behind an HTTP/JSON API. Clients POST versioned job specs
// (scalabletcc/job v1: single runs, experiment sweeps, fuzz campaigns),
// poll status, stream live protocol events over SSE, and fetch typed
// results. Sweep jobs checkpoint each completed cell to the state
// directory, and run jobs with checkpoint_every set snapshot the full
// simulator state every N cycles, so a restarted daemon resumes them
// instead of recomputing — a resumed run replays to byte-identical
// results. A checkpointed run can also be forked: a new job continues
// from the parent's latest snapshot under edited timing knobs.
//
// Usage:
//
//	tccd -addr :8077 -state /var/lib/tccd
//	tccd -queue 32 -workers 2 -job-timeout 2h
//
// API (all JSON unless noted):
//
//	POST /v1/jobs            submit a spec; 202 + status, 429 when full
//	GET  /v1/jobs            list job statuses
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/events live event stream (SSE, scalabletcc/events v1)
//	GET  /v1/jobs/{id}/result status + result; 409 until terminal
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	POST /v1/jobs/{id}/fork   new job from {id}'s latest checkpoint snapshot
//	GET  /v1/protocols        the protocol registry
//	GET  /v1/profiles         the workload-profile registry
//	GET  /healthz             liveness + queue depth
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "scalabletcc/internal/experiments" // registers the "sweep" job kind
	_ "scalabletcc/internal/fuzz"        // registers the "fuzz" job kind
	"scalabletcc/internal/runner"
	"scalabletcc/tcc"
)

// runWatchdogCycles is the deadlock guard applied to daemon-submitted run
// jobs that set no MaxCycles of their own: a service must not let one
// wedged simulation pin a worker forever. CLI runs are not subject to it.
const runWatchdogCycles = 50_000_000_000

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8077", "listen address")
		// The defaults are sized by the daemon load test
		// (TestDaemonLoadManySmallJobs): 2000 small run jobs from 64
		// concurrent submitters drain without a single 429 at queue 64 /
		// workers 4, where the old 16/1 refused hundreds. Sweep-heavy
		// deployments may prefer -workers 1, since each sweep already fans
		// its cells across cores.
		capacity   = flag.Int("queue", 64, "max queued (not yet running) jobs; beyond it POST /v1/jobs answers 429")
		workers    = flag.Int("workers", 4, "jobs run concurrently (each sweep still fans its cells across cores)")
		jobTimeout = flag.Duration("job-timeout", 0, "wall-clock guard per job, e.g. 2h (0 = none)")
		stateDir   = flag.String("state", "", "state directory: persists specs, checkpoints, and results; enables restart resume")
	)
	flag.Parse()

	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatalf("tccd: state dir: %v", err)
		}
	}

	q := runner.NewQueue(runner.Config{
		Capacity:   *capacity,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
		StateDir:   *stateDir,
		Validate:   tcc.ValidateJobSpec,
		ForkPrep:   tcc.PrepareForkJob,
	}, executeJob)

	if *stateDir != "" {
		resumed, err := q.Recover()
		if err != nil {
			log.Printf("tccd: recover: %v", err)
		}
		for _, id := range resumed {
			log.Printf("tccd: resuming job %s from %s", id, *stateDir)
		}
	}

	mux := runner.NewServer(q)
	mux.HandleFunc("GET /v1/protocols", serveProtocols)
	mux.HandleFunc("GET /v1/profiles", serveProfiles)

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	log.Printf("tccd: serving on %s (queue %d, workers %d)", *addr, *capacity, *workers)
	select {
	case err := <-errc:
		log.Fatalf("tccd: %v", err)
	case sig := <-sigc:
		log.Printf("tccd: %v: draining (running sweeps stay resumable)", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	q.Shutdown()
}

// executeJob is the daemon's executor: tcc.ExecuteJob with the service-side
// watchdog default for run jobs. Checkpointed run jobs keep their spec
// verbatim — the checkpoint manifest header binds the spec hash, so editing
// the spec here would orphan the job's own snapshots on resume and fork —
// and they are interruptible by construction, which is what the watchdog
// exists to guarantee.
func executeJob(ctx context.Context, spec *runner.JobSpec, jc *runner.JobContext) (*runner.JobResult, error) {
	if spec.Kind == runner.KindRun && spec.Run != nil && spec.Run.MaxCycles == 0 && spec.Run.CheckpointEvery == 0 {
		guarded := *spec
		run := *spec.Run
		run.MaxCycles = runWatchdogCycles
		guarded.Run = &run
		spec = &guarded
	}
	return tcc.ExecuteJob(ctx, spec, jc)
}

func serveProtocols(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name        string `json:"name"`
		Detection   string `json:"detection"`
		Description string `json:"description"`
	}
	var list []entry
	for _, info := range tcc.Protocols() {
		list = append(list, entry{info.Name, string(info.Detection), info.Description})
	}
	writeJSON(w, map[string]any{"protocols": list})
}

func serveProfiles(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name      string `json:"name"`
		TxInstr   int    `json:"tx_instr"`
		ReadWords int    `json:"read_words"`
		WrWords   int    `json:"write_words"`
		Stress    bool   `json:"stress,omitempty"`
	}
	var list []entry
	for _, p := range tcc.Profiles() {
		list = append(list, entry{Name: p.Name, TxInstr: p.TxInstr, ReadWords: p.ReadWords, WrWords: p.WriteWords})
	}
	for _, p := range tcc.StressProfiles() {
		list = append(list, entry{Name: p.Name, TxInstr: p.TxInstr, ReadWords: p.ReadWords, WrWords: p.WriteWords, Stress: true})
	}
	writeJSON(w, map[string]any{"profiles": list})
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encode"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
