// Command tccbench regenerates the tables and figures of "A Scalable,
// Non-blocking Approach to Transactional Memory" (HPCA 2007), plus the
// ablations described in DESIGN.md. Independent simulation runs are fanned
// across worker goroutines (-parallel, default GOMAXPROCS); output is
// byte-identical whatever the worker count.
//
// The flags are adapters over the versioned job API: tccbench builds a
// scalabletcc/job v1 sweep spec and executes it through tcc.RunJob — the
// same path the tccd daemon uses, where the identical spec additionally
// checkpoints per cell and resumes across restarts.
//
// Usage:
//
//	tccbench -exp fig7 -scale 0.25 -procs 1,4,16,64
//	tccbench -exp fig7 -parallel 8 -json -out BENCH_sweep.json
//	tccbench -exp all -verify
//
// Experiments: table1 table2 table3 fig6 fig7 fig8 fig9 protocols baseline
// granularity probes writeback scaling dircache hotpath all
//
// The scaling experiment sweeps the sharded simulation kernel's worker
// count (-shards) over the -procs grid and reports wall-clock speedups;
// its cells run sequentially so the timings are honest.
//
// The hotpath experiment reruns the perf gate's microbenchmark workloads
// (simulator throughput, commit latency, abort latency) with their pinned
// shapes — 16 processors, 0.1 scale, the benches' own seeds, min-of-3 wall
// time — so the BENCH_soa.json trajectory is reproducible by one command;
// -apps/-procs/-scale/-seed do not apply to it.
//
// The protocols experiment runs the head-to-head sweep across the protocol
// registry (TCC, bus baseline, TL2 STM, eager HTM); -protocol narrows the
// set, and -protocol list prints the registry.
//
// With -json (implied by -out) the run also emits a versioned
// machine-readable report — one cell per (app, procs, config) simulation —
// to -out FILE, or to stdout (suppressing the tables) when no -out is
// given. The schema is documented in EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"scalabletcc/internal/cliflag"
	"scalabletcc/internal/experiments"
	"scalabletcc/tcc"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|")+"|all")
		apps     = flag.String("apps", "", "comma-separated app names (default: per-experiment set)")
		procs    = flag.String("procs", "", "comma-separated processor counts for sweeps (default 1,2,4,8,16,32,64)")
		max      = flag.Int("maxprocs", 0, "machine size for table3/fig8/fig9/ablations (default 64; table3 default 32)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (0.1 = ten times fewer transactions)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		verify   = flag.Bool("verify", false, "run the serializability oracle on every run")
		protos   = flag.String("protocol", "", "comma-separated protocols for the head-to-head sweep (default: full registry; list prints it)")
		hops     = flag.String("hops", "", "comma-separated cycles/hop for fig8 (default 1,2,4,8)")
		shards   = flag.String("shards", "", "comma-separated worker counts for the scaling experiment (default 1,2,4,8)")
		parallel = flag.Int("parallel", 0, "worker goroutines for independent runs (0 = GOMAXPROCS)")
		jsonFlag = flag.Bool("json", false, "emit the machine-readable report (JSON)")
		outFile  = flag.String("out", "", "write the JSON report to FILE (implies -json)")
		timeout  = flag.Duration("timeout", 0, "per-run wall-clock timeout, e.g. 10m (0 = none)")
		progress = flag.Bool("progress", false, "print per-experiment run progress to stderr")
		events   = flag.Bool("events", false, "count protocol events per run and add them to the JSON report cells")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to FILE (analyze with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile to FILE at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // flush unreachable objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	if *protos == cliflag.ProtocolListArg {
		cliflag.ListProtocols(os.Stdout)
		return
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel %d is invalid (0 = GOMAXPROCS, or a positive worker count)", *parallel))
	}
	// The wire spec reads a zero scale as "the default"; the CLI's zero is an
	// explicit (invalid) input, refused with the historical message.
	if *scale <= 0 {
		fatal(fmt.Errorf("experiments: Scale %v is invalid (must be > 0)", *scale))
	}

	wantJSON := *jsonFlag || *outFile != ""
	wantTables := !(wantJSON && *outFile == "") // stdout carries the JSON document otherwise

	spec := tcc.NewJobSpec(tcc.JobKindSweep)
	sw := &tcc.SweepSpec{
		Apps:        cliflag.SplitList(*apps),
		Protocols:   cliflag.SplitList(*protos),
		MaxProcs:    *max,
		Scale:       *scale,
		Seed:        *seed,
		Verify:      *verify,
		CountEvents: *events,
		Parallel:    *parallel,
		Tables:      wantTables,
	}
	if *exp != "all" {
		sw.Experiments = []string{*exp}
	}
	var err error
	if sw.Procs, err = cliflag.ParseInts(*procs); err != nil {
		fatal(err)
	}
	if sw.Hops, err = cliflag.ParseInts(*hops); err != nil {
		fatal(err)
	}
	if sw.Shards, err = cliflag.ParseInts(*shards); err != nil {
		fatal(err)
	}
	if *timeout > 0 {
		// The wire spec carries milliseconds; round a sub-millisecond guard
		// up rather than silently dropping it.
		sw.TimeoutMS = int64((*timeout + time.Millisecond - 1) / time.Millisecond)
	}
	spec.Sweep = sw

	opts := &tcc.RunJobOptions{}
	if *progress {
		opts.Progress = progressPrinter()
	}

	out, err := tcc.RunJob(context.Background(), spec, opts)
	if err != nil {
		fatal(err)
	}
	if wantTables {
		fmt.Print(out.Result.Tables)
	}

	if wantJSON {
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				fatal(err)
			}
			if _, err := f.Write(out.Result.Report); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tccbench: wrote %d cells to %s\n", out.Result.Cells, *outFile)
		} else if _, err := os.Stdout.Write(out.Result.Report); err != nil {
			fatal(err)
		}
	}
}

// progressPrinter adapts the job Progress callback to the historical
// one-updating-status-line-per-experiment format on stderr.
func progressPrinter() func(stage string, done, total int) {
	return func(stage string, done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d", stage, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tccbench:", err)
	os.Exit(1)
}
