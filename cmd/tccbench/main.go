// Command tccbench regenerates the tables and figures of "A Scalable,
// Non-blocking Approach to Transactional Memory" (HPCA 2007), plus the
// ablations described in DESIGN.md.
//
// Usage:
//
//	tccbench -exp fig7 -scale 0.25 -procs 1,4,16,64
//	tccbench -exp all -verify
//
// Experiments: table1 table2 table3 fig6 fig7 fig8 fig9 baseline
// granularity probes writeback all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scalabletcc/internal/experiments"
	"scalabletcc/tcc"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1|table2|table3|fig6|fig7|fig8|fig9|baseline|granularity|probes|writeback|dircache|all")
		apps   = flag.String("apps", "", "comma-separated app names (default: the paper's eleven)")
		procs  = flag.String("procs", "", "comma-separated processor counts for sweeps (default 1,2,4,8,16,32,64)")
		max    = flag.Int("maxprocs", 0, "machine size for table3/fig8/fig9/ablations (default 64; table3 default 32)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (0.1 = ten times fewer transactions)")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		verify = flag.Bool("verify", false, "run the serializability oracle on every run")
		hops   = flag.String("hops", "", "comma-separated cycles/hop for fig8 (default 1,2,4,8)")
	)
	flag.Parse()

	opts := experiments.Options{
		Scale:    *scale,
		Seed:     *seed,
		Verify:   *verify,
		MaxProcs: *max,
	}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	var err error
	if opts.Procs, err = parseInts(*procs); err != nil {
		fatal(err)
	}
	if opts.HopLatencies, err = parseInts(*hops); err != nil {
		fatal(err)
	}

	run := func(name string) {
		fmt.Printf("== %s ==\n", name)
		switch name {
		case "table1":
			experiments.Table1(os.Stdout)
		case "table2":
			p := opts.MaxProcs
			if p == 0 {
				p = 64
			}
			experiments.Table2(os.Stdout, tcc.DefaultConfig(p))
		case "table3":
			rows, err := experiments.Table3(opts)
			exitOn(err)
			experiments.PrintTable3(os.Stdout, rows)
		case "fig6":
			rows, err := experiments.Fig6(opts)
			exitOn(err)
			experiments.PrintFig6(os.Stdout, rows)
		case "fig7":
			cells, err := experiments.Fig7(opts)
			exitOn(err)
			experiments.PrintFig7(os.Stdout, cells)
		case "fig8":
			cells, err := experiments.Fig8(opts)
			exitOn(err)
			experiments.PrintFig8(os.Stdout, cells)
		case "fig9":
			rows, err := experiments.Fig9(opts)
			exitOn(err)
			experiments.PrintFig9(os.Stdout, rows)
		case "baseline":
			cells, err := experiments.BaselineComparison(opts)
			exitOn(err)
			experiments.PrintBaseline(os.Stdout, cells)
		case "granularity":
			rows, err := experiments.Granularity(opts)
			exitOn(err)
			experiments.PrintGranularity(os.Stdout, rows)
		case "probes":
			rows, err := experiments.Probes(opts)
			exitOn(err)
			experiments.PrintProbes(os.Stdout, rows)
		case "writeback":
			rows, err := experiments.WriteBack(opts)
			exitOn(err)
			experiments.PrintWriteBack(os.Stdout, rows)
		case "dircache":
			rows, err := experiments.DirCache(opts)
			exitOn(err)
			experiments.PrintDirCache(os.Stdout, rows)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9",
			"baseline", "granularity", "probes", "writeback", "dircache",
		} {
			run(name)
		}
		return
	}
	run(*exp)
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tccbench:", err)
	os.Exit(1)
}
