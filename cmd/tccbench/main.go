// Command tccbench regenerates the tables and figures of "A Scalable,
// Non-blocking Approach to Transactional Memory" (HPCA 2007), plus the
// ablations described in DESIGN.md. Independent simulation runs are fanned
// across worker goroutines (-parallel, default GOMAXPROCS); output is
// byte-identical whatever the worker count.
//
// Usage:
//
//	tccbench -exp fig7 -scale 0.25 -procs 1,4,16,64
//	tccbench -exp fig7 -parallel 8 -json -out BENCH_sweep.json
//	tccbench -exp all -verify
//
// Experiments: table1 table2 table3 fig6 fig7 fig8 fig9 protocols baseline
// granularity probes writeback dircache all
//
// The protocols experiment runs the head-to-head sweep across the protocol
// registry (TCC, bus baseline, TL2 STM, eager HTM); -protocol narrows the
// set, and -protocol list prints the registry.
//
// With -json (implied by -out) the run also emits a versioned
// machine-readable report — one cell per (app, procs, config) simulation —
// to -out FILE, or to stdout (suppressing the tables) when no -out is
// given. The schema is documented in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"scalabletcc/internal/experiments"
	"scalabletcc/tcc"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|")+"|all")
		apps     = flag.String("apps", "", "comma-separated app names (default: per-experiment set)")
		procs    = flag.String("procs", "", "comma-separated processor counts for sweeps (default 1,2,4,8,16,32,64)")
		max      = flag.Int("maxprocs", 0, "machine size for table3/fig8/fig9/ablations (default 64; table3 default 32)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (0.1 = ten times fewer transactions)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		verify   = flag.Bool("verify", false, "run the serializability oracle on every run")
		protos   = flag.String("protocol", "", "comma-separated protocols for the head-to-head sweep (default: full registry; list prints it)")
		hops     = flag.String("hops", "", "comma-separated cycles/hop for fig8 (default 1,2,4,8)")
		parallel = flag.Int("parallel", 0, "worker goroutines for independent runs (0 = GOMAXPROCS)")
		jsonFlag = flag.Bool("json", false, "emit the machine-readable report (JSON)")
		outFile  = flag.String("out", "", "write the JSON report to FILE (implies -json)")
		timeout  = flag.Duration("timeout", 0, "per-run wall-clock timeout, e.g. 10m (0 = none)")
		progress = flag.Bool("progress", false, "print per-experiment run progress to stderr")
		events   = flag.Bool("events", false, "count protocol events per run and add them to the JSON report cells")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to FILE (analyze with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile to FILE at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // flush unreachable objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	if *protos == "list" {
		fmt.Println("Registered protocols:")
		for _, info := range tcc.Protocols() {
			fmt.Printf("  %-10s %-5s %s\n", info.Name, info.Detection, info.Description)
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Verify = *verify
	opts.JobTimeout = *timeout
	opts.CountEvents = *events
	if *max > 0 {
		opts.MaxProcs = *max
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel %d is invalid (0 = GOMAXPROCS, or a positive worker count)", *parallel))
	}
	if *parallel > 0 {
		opts.Parallel = *parallel
	}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	if *protos != "" {
		opts.Protocols = strings.Split(*protos, ",")
	}
	var err error
	if opts.Procs, err = parseInts(*procs); err != nil {
		fatal(err)
	}
	if opts.HopLatencies, err = parseInts(*hops); err != nil {
		fatal(err)
	}

	wantJSON := *jsonFlag || *outFile != ""
	var rec *experiments.Recorder
	if wantJSON {
		rec = &experiments.Recorder{}
		opts.Record = rec
	}
	tables := io.Writer(os.Stdout)
	if wantJSON && *outFile == "" {
		tables = io.Discard // stdout carries the JSON document
	}

	run := func(name string) {
		e, ok := experiments.ByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		o := opts
		if name == "table3" && *max == 0 {
			o.MaxProcs = 32 // the paper reports Table 3 at 32 CPUs
		}
		if *progress {
			o.Progress = progressPrinter(name)
		}
		fmt.Fprintf(tables, "== %s ==\n", name)
		if err := e.Run(o, tables); err != nil {
			fatal(err)
		}
		fmt.Fprintln(tables)
	}

	if *exp == "all" {
		for _, name := range experiments.Names() {
			run(name)
		}
	} else {
		run(*exp)
	}

	if wantJSON {
		rep := rec.Report(opts)
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				fatal(err)
			}
			if err := rep.Write(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tccbench: wrote %d cells to %s\n", len(rep.Cells), *outFile)
		} else if err := rep.Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// progressPrinter returns a harness progress callback that keeps one
// updating status line per experiment on stderr.
func progressPrinter(name string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d", name, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tccbench:", err)
	os.Exit(1)
}
