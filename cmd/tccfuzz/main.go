// Command tccfuzz runs the protocol fuzz campaign: adversarial machine
// configurations and workloads, each simulated under the continuous
// invariant auditor. Failures are shrunk to minimal reproducers and written
// as deterministic repro tapes.
//
// Cases rotate over the protocol registry (weighted toward the scalable
// design); -protocol restricts the rotation, and -protocol list prints the
// registry.
//
// Usage:
//
//	tccfuzz -duration 60s -jobs 4 -out fuzz-out
//	tccfuzz -duration 15m -seed 7 -out artifacts/fuzz
//	tccfuzz -duration 2m -protocol tl2,eager
//	tccfuzz -replay testdata/fuzz/fuzz-audit-skip-vector-bounds-15.json
//	tccfuzz -replay 'testdata/fuzz/*.json'
//
// Exit status is non-zero if the campaign found failures (tapes are written
// to -out) or a replay did not reproduce its tape's expected class.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"scalabletcc/internal/fuzz"
	"scalabletcc/tcc"
)

func main() {
	var (
		duration    = flag.Duration("duration", 60*time.Second, "campaign wall-clock budget")
		seed        = flag.Uint64("seed", 1, "case-generator seed")
		jobs        = flag.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir      = flag.String("out", "fuzz-out", "directory for repro tapes ('' = don't write tapes)")
		caseTimeout = flag.Duration("case-timeout", 2*time.Minute, "wall-clock guard per case")
		shrinkBudg  = flag.Int("shrink-budget", 200, "max simulations spent shrinking one failure")
		maxFail     = flag.Int("max-failures", 3, "stop after this many failures")
		protocol    = flag.String("protocol", "", "comma-separated protocols to rotate over (default: weighted mix; list prints the registry)")
		replay      = flag.String("replay", "", "replay repro tape(s) (file or glob) instead of fuzzing")
		verbose     = flag.Bool("v", false, "log per-case progress to stderr")
	)
	flag.Parse()

	if *protocol == "list" {
		fmt.Println("Registered protocols:")
		for _, info := range tcc.Protocols() {
			fmt.Printf("  %-10s %-5s %s\n", info.Name, info.Detection, info.Description)
		}
		return
	}
	var protocols []string
	if *protocol != "" {
		protocols = strings.Split(*protocol, ",")
	}

	if *replay != "" {
		os.Exit(replayTapes(*replay))
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	rep, err := fuzz.Campaign(fuzz.Options{
		Duration:     *duration,
		Seed:         *seed,
		Jobs:         *jobs,
		CaseTimeout:  *caseTimeout,
		ShrinkBudget: *shrinkBudg,
		MaxFailures:  *maxFail,
		Protocols:    protocols,
		OutDir:       *outDir,
		Logf:         logf,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tccfuzz: %d cases in %v, %d clean, %d failures\n",
		rep.Cases, rep.Elapsed.Round(time.Second), rep.Clean, len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  [%s] %s\n", f.Class, f.Detail)
		proto := f.Shrunk.Protocol
		if proto == "" {
			proto = "tcc"
		}
		fmt.Printf("    shrunk: protocol=%s procs=%d tx=%d ops=%d lines=%d (in %d runs)\n",
			proto, f.Shrunk.Procs, f.Shrunk.TxPerProc, f.Shrunk.OpsPerTx, f.Shrunk.Lines, f.ShrinkRuns)
		if f.TapePath != "" {
			fmt.Printf("    tape: %s\n", f.TapePath)
		}
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}

// replayTapes replays every tape matching the file-or-glob pattern and
// returns the process exit code.
func replayTapes(pattern string) int {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		// Not a glob match: treat as a literal path so a missing file errors
		// clearly instead of silently replaying nothing.
		paths = []string{pattern}
	}
	code := 0
	for _, p := range paths {
		if err := fuzz.ReplayTape(p); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", p, err)
			code = 1
			continue
		}
		fmt.Printf("ok   %s\n", p)
	}
	return code
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tccfuzz: %v\n", err)
	os.Exit(1)
}
