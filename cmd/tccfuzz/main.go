// Command tccfuzz runs the protocol fuzz campaign: adversarial machine
// configurations and workloads, each simulated under the continuous
// invariant auditor. Failures are shrunk to minimal reproducers and written
// as deterministic repro tapes.
//
// The flags are adapters over the versioned job API: tccfuzz builds a
// scalabletcc/job v1 fuzz spec and executes it through tcc.RunJob — the
// same path the tccd daemon uses. Tape replay (-replay) stays a direct
// call: replaying a deterministic artifact is not a job.
//
// Cases rotate over the protocol registry (weighted toward the scalable
// design); -protocol restricts the rotation, and -protocol list prints the
// registry.
//
// Usage:
//
//	tccfuzz -duration 60s -jobs 4 -out fuzz-out
//	tccfuzz -duration 15m -seed 7 -out artifacts/fuzz
//	tccfuzz -duration 2m -protocol tl2,eager
//	tccfuzz -replay testdata/fuzz/fuzz-audit-skip-vector-bounds-15.json
//	tccfuzz -replay 'testdata/fuzz/*.json'
//
// Exit status is non-zero if the campaign found failures (tapes are written
// to -out) or a replay did not reproduce its tape's expected class.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"scalabletcc/internal/cliflag"
	"scalabletcc/internal/fuzz"
	"scalabletcc/tcc"
)

func main() {
	var (
		duration    = flag.Duration("duration", 60*time.Second, "campaign wall-clock budget")
		seed        = flag.Uint64("seed", 1, "case-generator seed")
		jobs        = flag.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir      = flag.String("out", "fuzz-out", "directory for repro tapes ('' = don't write tapes)")
		caseTimeout = flag.Duration("case-timeout", 2*time.Minute, "wall-clock guard per case")
		shrinkBudg  = flag.Int("shrink-budget", 200, "max simulations spent shrinking one failure")
		maxFail     = flag.Int("max-failures", 3, "stop after this many failures")
		protocol    = flag.String("protocol", "", "comma-separated protocols to rotate over (default: weighted mix; list prints the registry)")
		replay      = flag.String("replay", "", "replay repro tape(s) (file or glob) instead of fuzzing")
		verbose     = flag.Bool("v", false, "log per-case progress to stderr")
	)
	flag.Parse()

	if *protocol == cliflag.ProtocolListArg {
		cliflag.ListProtocols(os.Stdout)
		return
	}

	if *replay != "" {
		os.Exit(replayTapes(*replay))
	}

	spec := tcc.NewJobSpec(tcc.JobKindFuzz)
	spec.Fuzz = &tcc.FuzzSpec{
		DurationSec:    int((*duration + time.Second - 1) / time.Second),
		Seed:           *seed,
		Jobs:           *jobs,
		CaseTimeoutSec: int((*caseTimeout + time.Second - 1) / time.Second),
		ShrinkBudget:   *shrinkBudg,
		MaxFailures:    *maxFail,
		Protocols:      cliflag.SplitList(*protocol),
		OutDir:         *outDir,
	}
	opts := &tcc.RunJobOptions{}
	if *verbose {
		opts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	out, err := tcc.RunJob(context.Background(), spec, opts)
	if err != nil {
		fatal(err)
	}
	var rep struct {
		Cases      int     `json:"cases"`
		Clean      int     `json:"clean"`
		ElapsedSec float64 `json:"elapsed_sec"`
		Failures   []struct {
			Class      string `json:"class"`
			Detail     string `json:"detail"`
			Protocol   string `json:"protocol"`
			Procs      int    `json:"procs"`
			TxPerProc  int    `json:"tx_per_proc"`
			OpsPerTx   int    `json:"ops_per_tx"`
			Lines      int    `json:"lines"`
			ShrinkRuns int    `json:"shrink_runs"`
			Tape       string `json:"tape"`
		} `json:"failures"`
	}
	if err := json.Unmarshal(out.Result.Fuzz, &rep); err != nil {
		fatal(err)
	}
	elapsed := time.Duration(rep.ElapsedSec * float64(time.Second)).Round(time.Second)
	fmt.Printf("tccfuzz: %d cases in %v, %d clean, %d failures\n",
		rep.Cases, elapsed, rep.Clean, len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  [%s] %s\n", f.Class, f.Detail)
		proto := f.Protocol
		if proto == "" {
			proto = "tcc"
		}
		fmt.Printf("    shrunk: protocol=%s procs=%d tx=%d ops=%d lines=%d (in %d runs)\n",
			proto, f.Procs, f.TxPerProc, f.OpsPerTx, f.Lines, f.ShrinkRuns)
		if f.Tape != "" {
			fmt.Printf("    tape: %s\n", f.Tape)
		}
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}

// replayTapes replays every tape matching the file-or-glob pattern and
// returns the process exit code.
func replayTapes(pattern string) int {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		// Not a glob match: treat as a literal path so a missing file errors
		// clearly instead of silently replaying nothing.
		paths = []string{pattern}
	}
	code := 0
	for _, p := range paths {
		if err := fuzz.ReplayTape(p); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", p, err)
			code = 1
			continue
		}
		fmt.Printf("ok   %s\n", p)
	}
	return code
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tccfuzz: %v\n", err)
	os.Exit(1)
}
