// Command tccwalk replays the paper's protocol walkthroughs (Figure 2 and
// both Figure 3 scenarios) on a three-node machine and prints the protocol
// events — TID grants, skips, probes, marks, commits, invalidations,
// violations, write-backs — message by message, annotated with simulated
// cycle times. It is the executable version of Section 2.2's examples.
//
// Usage:
//
//	tccwalk                      # figure2
//	tccwalk -scenario figure3-conflict
//	tccwalk -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalabletcc/internal/core"
	"scalabletcc/internal/obs"
	"scalabletcc/internal/scenario"
	"scalabletcc/internal/verify"
)

func main() {
	var (
		name = flag.String("scenario", "figure2", "scenario to replay (see -list)")
		list = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, n := range scenario.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	script, ok := scenario.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tccwalk: unknown scenario %q (try -list)\n", *name)
		os.Exit(1)
	}

	cfg := core.DefaultConfig(script.Procs())
	cfg.MaxCycles = 10_000_000
	sys, err := core.NewSystem(cfg, script)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccwalk:", err)
		os.Exit(1)
	}
	sys.CollectCommitLog(true)
	sys.Observe(obs.NewTraceAdapter(func(f string, args ...any) {
		line := fmt.Sprintf(f, args...)
		// The walkthrough hides background noise on the helper processor.
		if strings.Contains(line, "p2 ") && !strings.Contains(line, "COMMIT") {
			return
		}
		fmt.Println(line)
	}))

	fmt.Printf("=== %s on a %d-node Scalable TCC machine ===\n", script.ScriptName, script.Procs())
	fmt.Printf("addresses: %#x homed at dir0, %#x at dir1, %#x at dir2\n\n",
		scenario.AddrD0, scenario.AddrD1, scenario.AddrD2)

	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccwalk:", err)
		os.Exit(1)
	}

	fmt.Printf("\n=== outcome ===\n")
	fmt.Printf("cycles: %d   commits: %d   violations: %d   owner forwards: %d\n",
		res.Cycles, res.Commits, res.Violations, res.Forwards)
	if v := verify.Check(res.CommitLog); len(v) == 0 {
		fmt.Println("serializability: OK — the committed reads match the TID-serial order")
	} else {
		fmt.Printf("serializability: %d VIOLATIONS (protocol bug)\n", len(v))
		os.Exit(1)
	}
}
