// Command tccsim runs one workload on one Scalable TCC machine
// configuration and prints the execution-time breakdown, protocol counters,
// and traffic decomposition — the single-run view of the simulator.
//
// The flags are adapters over the versioned job API: tccsim builds a
// scalabletcc/job v1 run spec and executes it through tcc.RunJob — the
// same path the tccd daemon uses — so a CLI run and a daemon job with the
// same spec and seed produce byte-identical event streams.
//
// Usage:
//
//	tccsim -app barnes -procs 32
//	tccsim -app hotspot -procs 16 -granularity line -verify
//	tccsim -app swim -procs 64 -hop 8 -scale 0.5
//	tccsim -app barnes -procs 32 -checkpoint run.ckpt -checkpoint-every 100000
//
// With -checkpoint/-checkpoint-every the run snapshots its full simulator
// state into a crash-safe manifest every N cycles; rerunning the same
// command after an interruption resumes from the latest snapshot and
// produces byte-identical output to an uninterrupted run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scalabletcc/internal/cliflag"
	"scalabletcc/internal/mesh"
	"scalabletcc/internal/stats"
	"scalabletcc/tcc"
)

func main() {
	var (
		app      = flag.String("app", "barnes", "workload profile (see -list)")
		list     = flag.Bool("list", false, "list available workload profiles and exit")
		protocol = flag.String("protocol", "tcc", "machine model to run (list prints the registry)")
		procs    = flag.Int("procs", 16, "processor count")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		hop      = flag.Int("hop", 3, "mesh link latency, cycles per hop")
		gran     = flag.String("granularity", "word", "conflict detection granularity: word|line")
		retain   = flag.Int("retain", 8, "violations before TID retention (0 disables)")
		wt       = flag.Bool("writethrough", false, "ship data with commit marks instead of write-back")
		shards   = flag.Int("shards", 0, "run the epoch-parallel sharded kernel with N workers (0 = sequential; results are worker-count independent)")
		verify   = flag.Bool("verify", false, "check serializability of the commit log")
		basel    = flag.Bool("baseline", false, "run the bus-based small-scale TCC instead")
		tape     = flag.Bool("tape", false, "profile conflicts (TAPE): print the most damaging lines")
		trace    = flag.Bool("trace", false, "print every protocol event to stderr (very verbose)")
		traceFor = flag.String("tracefilter", "", "only print trace lines containing this substring")
		traceOut = flag.String("trace-json", "", "write every protocol event as JSON Lines to this file (- for stdout)")
		sample   = flag.Uint64("sample", 0, "with -trace-json: emit a machine-occupancy sample every N cycles")
		ckpt     = flag.String("checkpoint", "", "checkpoint manifest path: snapshot into it as the run progresses, resume from it when rerun")
		ckptN    = flag.Uint64("checkpoint-every", 0, "with -checkpoint: snapshot the full simulator state every N cycles")
	)
	flag.Parse()

	if *protocol == cliflag.ProtocolListArg {
		cliflag.ListProtocols(os.Stdout)
		return
	}
	if *list {
		cliflag.ListProfiles(os.Stdout)
		return
	}

	prof, err := tcc.ProfileByNameErr(*app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tccsim: %v (try -list)\n", err)
		os.Exit(1)
	}

	sink, closeSink := openSink(*traceOut)
	defer closeSink()

	// An explicit -scale <= 0 historically ran the minimum workload (Profile
	// scaling clamps at one transaction per phase), but the wire spec reads
	// zero as "the default 1.0" and refuses negatives; a scale small enough
	// to hit the same clamp on every profile preserves the old behaviour.
	effScale := *scale
	if effScale <= 0 {
		effScale = 1e-12
	}

	spec := tcc.NewJobSpec(tcc.JobKindRun)
	spec.Run = &tcc.RunSpec{
		App:    *app,
		Procs:  *procs,
		Scale:  effScale,
		Seed:   *seed,
		Verify: *verify,
	}
	opts := &tcc.RunJobOptions{EventWriter: sink}

	scalable := !*basel && *protocol == "tcc"
	if (*ckpt != "") != (*ckptN > 0) {
		exitOn(fmt.Errorf("-checkpoint and -checkpoint-every go together"))
	}
	if *ckptN > 0 {
		if !scalable {
			exitOn(fmt.Errorf("-checkpoint requires the scalable machine (protocol tcc)"))
		}
		spec.Run.CheckpointEvery = *ckptN
		opts.CheckpointPath = *ckpt
	}
	switch {
	case *basel:
		if *sample > 0 {
			exitOn(fmt.Errorf("-sample requires the scalable machine (drop -baseline)"))
		}
		if *shards > 0 {
			exitOn(fmt.Errorf("-shards requires the scalable machine (drop -baseline)"))
		}
		// The bus machine takes only (app, procs, scale, seed, verify): the
		// mesh knobs below have no bus equivalent, as ever.
		spec.Run.Protocol = "baseline"
	default:
		r := *retain
		spec.Run.Machine = &tcc.MachineSpec{
			HopLatency:      *hop,
			LineGranularity: *gran == "line",
			StarveRetain:    &r,
			WriteThrough:    *wt,
			Shards:          *shards,
		}
		spec.Run.Protocol = *protocol
	}
	if scalable {
		// -trace, -tape, and -sample apply to the scalable machine only;
		// registry protocols ignore them, as the pre-job CLI always has.
		if *trace {
			opts.Observer = tcc.TraceObserver(func(f string, args ...any) {
				line := fmt.Sprintf(f, args...)
				if *traceFor == "" || strings.Contains(line, *traceFor) {
					fmt.Fprintln(os.Stderr, line)
				}
			})
		}
		opts.ConflictProfile = *tape
		if *sample > 0 {
			if sink == nil {
				exitOn(fmt.Errorf("-sample requires -trace-json"))
			}
			spec.Run.SampleEvery = *sample
		}
	}

	out, err := tcc.RunJob(context.Background(), spec, opts)
	exitOn(err)

	switch {
	case *basel:
		res := out.Proto.Baseline
		fmt.Printf("bus-based TCC: %s on %d procs\n", prof.Name, *procs)
		fmt.Printf("  cycles      %d\n", res.Cycles)
		fmt.Printf("  commits     %d, violations %d\n", res.Commits, res.Violations)
		fmt.Printf("  bus         %d bytes, busy %d cycles (%.1f%%)\n",
			res.BusBytes, res.BusBusy, 100*float64(res.BusBusy)/float64(res.Cycles))
		printBreakdown(res.Breakdown)
		if *verify {
			reportVerify(out.Result.Violations)
		}
	case !scalable:
		printRegistry(*protocol, prof, *procs, out, *verify)
	default:
		res := out.Proto.Scalable
		fmt.Printf("Scalable TCC: %s on %d procs (%s granularity)\n", prof.Name, *procs, *gran)
		fmt.Printf("  cycles        %d\n", res.Cycles)
		fmt.Printf("  commits       %d, violations %d, committed instr %d\n",
			res.Commits, res.Violations, res.Instr)
		printBreakdown(res.Breakdown)
		fmt.Printf("  tx fingerprint (p90): %d instr, rd %d B, wr %d B, %d dirs/commit\n",
			res.TxInstrP90, res.RdSetBytesP90, res.WrSetBytesP90, res.DirsPerCommitP90)
		fmt.Printf("  directories   occupancy p90 %d cycles, working set p90 %d entries\n",
			res.DirOccupancyP90, res.DirWorkingSetP90)
		fmt.Printf("  traffic       %.4f B/instr (commit %.4f, miss %.4f, wb %.4f, shared %.4f)\n",
			res.BytesPerInstr(),
			res.ClassBytesPerInstr(mesh.ClassCommit),
			res.ClassBytesPerInstr(mesh.ClassMiss),
			res.ClassBytesPerInstr(mesh.ClassWriteBack),
			res.ClassBytesPerInstr(mesh.ClassShared))
		fmt.Printf("  cache         %d misses, %d evictions, %d spills, %d invalidations\n",
			res.CacheStats.Misses, res.CacheStats.Evictions, res.CacheStats.Spills,
			res.CacheStats.Invalidations)
		fmt.Printf("  protocol      %d stalled loads, %d owner forwards, %d dropped write-backs\n",
			res.StalledLoads, res.Forwards, res.DroppedWBs)
		if profiler := out.Profiler; profiler != nil {
			fmt.Printf("  TAPE          %d violations, %d wasted cycles\n",
				profiler.TotalViolations(), profiler.WastedCycles())
			for _, r := range profiler.Top(10) {
				fmt.Printf("    %s\n", r)
			}
			if starved := profiler.Starved(uint64(*retain)); *retain > 0 && len(starved) > 0 {
				for _, sr := range starved {
					fmt.Printf("    starvation: proc %d hit a streak of %d retries\n", sr.Proc, sr.WorstStreak)
				}
			}
		}
		if *verify {
			reportVerify(out.Result.Violations)
		}
	}
}

// printRegistry prints a non-default protocol's digest: the shared summary
// plus model-specific counters.
func printRegistry(name string, prof tcc.Profile, procs int, out *tcc.JobOutput, verify bool) {
	res := out.Proto
	info, _ := tcc.ProtocolByNameErr(name)
	fmt.Printf("%s (%s detection): %s on %d procs\n", name, info.Detection, prof.Name, procs)
	fmt.Printf("  cycles        %d\n", res.Summary.Cycles)
	fmt.Printf("  commits       %d, violations %d, committed instr %d\n",
		res.Summary.Commits, res.Summary.Violations, res.Summary.Instructions)
	printBreakdown(res.Summary.Breakdown)
	switch {
	case res.TL2 != nil:
		fmt.Printf("  version clock %d reads, %d advances (node 0 round trips)\n",
			res.TL2.ClockReads, res.TL2.ClockAdvances)
		fmt.Printf("  traffic       %d bytes over the mesh\n", res.TL2.Traffic.TotalBytes())
	case res.Eager != nil:
		fmt.Printf("  NACK aborts   %d on read, %d on write (requester loses)\n",
			res.Eager.NacksRead, res.Eager.NacksWrite)
		fmt.Printf("  traffic       %d bytes over the mesh\n", res.Eager.Traffic.TotalBytes())
	case res.Baseline != nil:
		fmt.Printf("  bus           %d bytes, busy %d cycles (%.1f%%)\n",
			res.Baseline.BusBytes, res.Baseline.BusBusy,
			100*float64(res.Baseline.BusBusy)/float64(res.Baseline.Cycles))
	}
	if verify {
		reportVerify(out.Result.Violations)
	}
}

// openSink opens the -trace-json sink: nil for "", stdout for "-", a
// created file otherwise. The returned closer is safe to call always.
func openSink(path string) (io.Writer, func()) {
	switch path {
	case "":
		return nil, func() {}
	case "-":
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	exitOn(err)
	return f, func() { f.Close() }
}

func printBreakdown(b stats.Breakdown) {
	total := b.Total()
	fmt.Printf("  breakdown     ")
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		fmt.Printf("%s %.1f%%  ", c, 100*float64(b[c])/float64(total))
	}
	fmt.Println()
}

func reportVerify(violations int) {
	if violations == 0 {
		fmt.Println("  serializability: OK (every committed read matches the TID-serial order)")
		return
	}
	fmt.Printf("  serializability: %d VIOLATIONS\n", violations)
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tccsim:", err)
		os.Exit(1)
	}
}
