// Package scalabletcc's root benchmarks regenerate every table and figure
// of the paper's evaluation in miniature (scaled workloads), one bench per
// artifact, plus the ablation benches DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-relevant custom metrics (speedup,
// bytes/instr, violations) alongside the usual ns/op, so `-bench` output
// doubles as a quick reproduction report. cmd/tccbench runs the full-size
// versions.
package scalabletcc

import (
	"fmt"
	"runtime"
	"testing"

	"scalabletcc/internal/experiments"
	"scalabletcc/internal/mesh"
	"scalabletcc/internal/stats"
	"scalabletcc/tcc"
)

// benchOpts returns experiment options scaled for benchmark iteration.
// Parallel is pinned to 1 so per-op timings stay comparable across hosts;
// BenchmarkFig7Parallel measures the fan-out win separately.
func benchOpts() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Scale = 0.1
	opts.MaxProcs = 16
	opts.Procs = []int{1, 4, 16}
	opts.Apps = []string{"barnes", "equake", "SPECjbb2000", "volrend"}
	opts.Parallel = 1
	return opts
}

// BenchmarkTable3 regenerates the application-characterization table.
func BenchmarkTable3(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(opts.Apps) {
			b.Fatalf("got %d rows", len(rows))
		}
		if i == 0 {
			for _, r := range rows {
				if r.App == "barnes" {
					b.ReportMetric(float64(r.TxInstrP90), "barnes-txsize-p90")
					b.ReportMetric(float64(r.DirsPerCommitP90), "barnes-dirs/commit-p90")
				}
			}
		}
	}
}

// BenchmarkFig6 regenerates the single-processor breakdown.
func BenchmarkFig6(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var worst float64
			for _, r := range rows {
				if r.CommitFraction > worst {
					worst = r.CommitFraction
				}
			}
			b.ReportMetric(100*worst, "worst-commit-%-1cpu")
		}
	}
}

// BenchmarkFig7 regenerates the scaling study.
func BenchmarkFig7(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				if c.App == "SPECjbb2000" && c.Procs == 16 {
					b.ReportMetric(c.Speedup, "jbb-speedup-16p")
				}
				if c.App == "equake" && c.Procs == 16 {
					b.ReportMetric(c.Speedup, "equake-speedup-16p")
				}
			}
		}
	}
}

// BenchmarkFig7Parallel runs the same scaling study with the sweep fanned
// across all available cores — compare ns/op against BenchmarkFig7 for the
// harness's wall-clock win (on an N-core host expect up to ~min(N, jobs)x).
func BenchmarkFig7Parallel(b *testing.B) {
	opts := benchOpts()
	opts.Parallel = runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(opts.Parallel), "workers")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the latency-sensitivity sweep.
func BenchmarkFig8(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"equake", "SPECjbb2000"}
	opts.HopLatencies = []int{1, 8}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				if c.HopCycles == 8 {
					switch c.App {
					case "equake":
						b.ReportMetric(c.SlowdownVsHop1, "equake-slowdown-8cyc")
					case "SPECjbb2000":
						b.ReportMetric(c.SlowdownVsHop1, "jbb-slowdown-8cyc")
					}
				}
			}
		}
	}
}

// BenchmarkFig9 regenerates the traffic decomposition.
func BenchmarkFig9(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.App == "barnes" {
					b.ReportMetric(r.Total, "barnes-bytes/instr")
				}
			}
		}
	}
}

// BenchmarkBaselineVsScalable regenerates the A1 ablation: parallel commit
// vs the bus-serialized small-scale TCC.
func BenchmarkBaselineVsScalable(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"commitbound"}
	opts.Procs = []int{1, 16}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.BaselineComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				if c.Procs == 16 {
					b.ReportMetric(c.ScalableSpeedup, "scalable-speedup-16p")
					b.ReportMetric(c.BaselineSpeedup, "bus-speedup-16p")
				}
			}
		}
	}
}

// BenchmarkProtocols times each registry machine model on the contended
// hotspot workload through the unified RunProtocol API — one sub-benchmark
// per protocol, so the bench gate can hold per-protocol baselines. Simulated
// cycles and violations ride along as custom metrics: a simulator speedup
// that changes either moved behaviour, not just time.
func BenchmarkProtocols(b *testing.B) {
	for _, info := range tcc.Protocols() {
		b.Run(info.Name, func(b *testing.B) {
			cfg := tcc.DefaultConfig(8)
			cfg.Seed = 1
			prog := tcc.MustProfile("hotspot").Scale(0.25).Build(cfg.Procs, cfg.Seed)
			b.ReportAllocs()
			b.ResetTimer()
			var last *tcc.ProtocolResults
			for i := 0; i < b.N; i++ {
				res, err := tcc.RunProtocol(info.Name, cfg, prog)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Summary.Cycles), "sim-cycles")
			b.ReportMetric(float64(last.Summary.Violations), "violations")
		})
	}
}

// BenchmarkGranularity regenerates the A2 ablation: word- vs line-level
// conflict detection under false sharing.
func BenchmarkGranularity(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"falseshare"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Granularity(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(float64(rows[0].WordViolations), "word-violations")
			b.ReportMetric(float64(rows[0].LineViolations), "line-violations")
		}
	}
}

// BenchmarkProbes regenerates the A3 ablation: deferred probe responses vs
// repeated probing.
func BenchmarkProbes(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"commitbound"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Probes(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].RepeatedSlowdown, "repeated-probing-slowdown")
		}
	}
}

// BenchmarkWriteBackCommit regenerates the A4 ablation: write-back vs
// write-through commit traffic.
func BenchmarkWriteBackCommit(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"swim", "radix"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WriteBack(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].TrafficAmplification, "writethrough-traffic-x")
		}
	}
}

// BenchmarkShardedKernel measures the epoch-parallel kernel against the
// sequential engine on a 64-processor hotspot run (the workload the sharding
// work targets: one contended directory, every commit crossing the mesh).
// "seq" is the sequential kernel (Shards = 0); the shardsN variants run the
// same program on the epoch engine with N workers (the name avoids a
// trailing -N, which bench-output parsers read as the GOMAXPROCS suffix).
// Every shardsN variant
// must report the same sim-cycles — worker-count independence is the
// engine's contract — so the interesting spread is ns/op: the epoch
// machinery's overhead at one worker, and whatever parallelism the host's
// cores can redeem at four.
func BenchmarkShardedKernel(b *testing.B) {
	prof := tcc.MustProfile("hotspot").Scale(0.1)
	for _, sh := range []int{0, 1, 4} {
		name := "seq"
		if sh > 0 {
			name = fmt.Sprintf("shards%d", sh)
		}
		b.Run(name, func(b *testing.B) {
			cfg := tcc.DefaultConfig(64)
			cfg.Seed = 3
			cfg.Shards = sh
			prog := prof.Build(cfg.Procs, cfg.Seed)
			b.ReportAllocs()
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := tcc.Run(cfg, prog)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall-clock second on a 16-processor barnes run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof := tcc.MustProfile("barnes").Scale(0.1)
	cfg := tcc.DefaultConfig(16)
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := tcc.Run(cfg, prof.Build(16, uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		cycles += uint64(res.Cycles)
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// BenchmarkObserverOff measures the simulator with no observer attached —
// the baseline for the zero-overhead claim: disabled observation must cost
// only a nil check on the emit paths. Compare sim-cycles/op and ns/op with
// BenchmarkObserverCounting.
func BenchmarkObserverOff(b *testing.B) {
	prof := tcc.MustProfile("barnes").Scale(0.1)
	cfg := tcc.DefaultConfig(16)
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		sys, err := tcc.NewSystem(cfg, prof.Build(16, uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += uint64(res.Cycles)
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// BenchmarkObserverCounting measures the same run with the cheapest real
// sink attached (per-kind counters), bounding the cost of enabling
// observation.
func BenchmarkObserverCounting(b *testing.B) {
	prof := tcc.MustProfile("barnes").Scale(0.1)
	cfg := tcc.DefaultConfig(16)
	b.ReportAllocs()
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		sys, err := tcc.NewSystem(cfg, prof.Build(16, uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		c := tcc.NewCountingObserver()
		sys.Observe(c)
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += uint64(res.Cycles)
		events += c.Total()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkCommitLatency isolates the commit path: a tiny-transaction
// workload where validation+commit dominates, reporting mean commit-phase
// cycles per transaction.
func BenchmarkCommitLatency(b *testing.B) {
	prof := tcc.MustProfile("commitbound").Scale(0.1)
	cfg := tcc.DefaultConfig(16)
	for i := 0; i < b.N; i++ {
		res, err := tcc.Run(cfg, prof.Build(16, 1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && res.Commits > 0 {
			var commitCycles uint64
			for _, p := range res.PerProc {
				commitCycles += p.Breakdown[stats.Commit]
			}
			b.ReportMetric(float64(commitCycles)/float64(res.Commits), "commit-cycles/tx")
		}
	}
}

// BenchmarkAbortPath isolates the abort path: a contended-hotspot workload
// in which most transaction attempts violate and roll back, so the cache's
// arena-snapshot abort (tracked-list gang-clear plus O(1) overflow wipe) and
// the directory's retirement bookkeeping dominate. Reports violations per
// run so a change that accidentally suppresses aborts — making the numbers
// incomparable — is visible in the output.
func BenchmarkAbortPath(b *testing.B) {
	prof := tcc.MustProfile("hotspot").Scale(0.1)
	cfg := tcc.DefaultConfig(16)
	cfg.Seed = 7
	b.ReportAllocs()
	var viol uint64
	for i := 0; i < b.N; i++ {
		res, err := tcc.Run(cfg, prof.Build(16, cfg.Seed))
		if err != nil {
			b.Fatal(err)
		}
		viol += res.Violations
	}
	b.ReportMetric(float64(viol)/float64(b.N), "violations/op")
}

// BenchmarkMeshThroughput measures the interconnect substrate alone.
func BenchmarkMeshThroughput(b *testing.B) {
	res, err := tcc.Run(tcc.DefaultConfig(16), tcc.MustProfile("radix").Scale(0.1).Build(16, 1))
	if err != nil {
		b.Fatal(err)
	}
	bpi := res.ClassBytesPerInstr(mesh.ClassCommit)
	b.ReportMetric(bpi, "commit-bytes/instr")
	for i := 0; i < b.N; i++ {
		if _, err := tcc.Run(tcc.DefaultConfig(16), tcc.MustProfile("radix").Scale(0.1).Build(16, 1)); err != nil {
			b.Fatal(err)
		}
	}
}
